(* The closed-form coverage reasoner of Section 3.3 (Query.Cover), tested
   over its full decision surface: intervals, enum domains, nullability,
   type-atom resolution, and the soundness property against brute-force
   evaluation. *)

open Common

let schema =
  let s =
    ok_exn
      (Edm.Schema.add_root ~set:"People"
         (Edm.Entity_type.root ~name:"Human" ~key:[ "Hid" ]
            ~non_null:[ "Age"; "Gender" ]
            [ ("Hid", D.Int); ("Age", D.Int); ("Gender", D.Enum [ "M"; "F" ]);
              ("Note", D.String) ])
         Edm.Schema.empty)
  in
  ok_exn
    (Edm.Schema.add_derived
       (Edm.Entity_type.derived ~name:"Adulterer" ~parent:"Human" [ ("Extra", D.Int) ])
       s)

let taut c = Query.Cover.tautology schema ~etype:"Human" c
let sat c = Query.Cover.satisfiable schema ~etype:"Human" c
let implies a b = Query.Cover.implies schema ~etype:"Human" a b

let ge n = C.Cmp ("Age", C.Ge, V.Int n)
let lt n = C.Cmp ("Age", C.Lt, V.Int n)
let gt n = C.Cmp ("Age", C.Gt, V.Int n)
let le n = C.Cmp ("Age", C.Le, V.Int n)
let eqs a v = C.Cmp (a, C.Eq, V.String v)

let test_interval_tautologies () =
  checkb "age >= 18 or age < 18" true (taut (C.Or (ge 18, lt 18)));
  checkb "age >= 18 or age < 17 leaves a gap" false (taut (C.Or (ge 18, lt 17)));
  checkb "age > 17 or age <= 17" true (taut (C.Or (gt 17, le 17)));
  checkb "integer rounding: > 17 or < 18" true (taut (C.Or (gt 17, lt 18)));
  checkb "three-way split" true (taut (C.disj [ lt 10; C.And (ge 10, lt 20); ge 20 ]));
  checkb "three-way split with a hole" false
    (taut (C.disj [ lt 10; C.And (ge 11, lt 20); ge 20 ]))

let test_enum_tautologies () =
  checkb "closed domain M or F" true (taut (C.Or (eqs "Gender" "M", eqs "Gender" "F")));
  checkb "M alone does not cover" false (taut (eqs "Gender" "M"));
  checkb "open string domain never covers by enumeration" false
    (taut (C.Or (eqs "Note" "a", eqs "Note" "b")))

let test_nullability () =
  (* Note is nullable: conditions over it can't be tautologies without a
     null test... *)
  checkb "null escapes comparisons" false
    (taut (C.Or (C.Cmp ("Note", C.Eq, V.String "x"), C.Cmp ("Note", C.Neq, V.String "x"))));
  checkb "null test completes the cover" true
    (taut
       (C.disj
          [ C.Is_null "Note"; C.Cmp ("Note", C.Eq, V.String "x");
            C.Cmp ("Note", C.Neq, V.String "x") ]));
  (* Age is declared non-null, so its comparisons do cover. *)
  checkb "non-null attribute covers" true (taut (C.Or (ge 0, lt 0)));
  (* Keys are implicitly non-null. *)
  checkb "key attribute covers" true
    (taut (C.Or (C.Cmp ("Hid", C.Ge, V.Int 0), C.Cmp ("Hid", C.Lt, V.Int 0))))

let test_type_atoms () =
  checkb "IS OF Human resolves true for Human" true (taut (C.Is_of "Human"));
  checkb "IS OF ONLY Human true for exact Human" true (taut (C.Is_of_only "Human"));
  checkb "IS OF ONLY Human false for Adulterer" false
    (Query.Cover.tautology schema ~etype:"Adulterer" (C.Is_of_only "Human"));
  checkb "IS OF Human true for the subtype" true
    (Query.Cover.tautology schema ~etype:"Adulterer" (C.Is_of "Human"));
  checkb "subtype atom unsatisfiable at the root" false (sat (C.Is_of "Adulterer"))

let test_satisfiable () =
  checkb "empty interval" false (sat (C.And (ge 10, lt 5)));
  checkb "point interval" true (sat (C.And (ge 10, le 10)));
  checkb "enum excluded values" false
    (sat (C.And (eqs "Gender" "M", eqs "Gender" "F")));
  checkb "false" false (sat C.False)

let test_implies () =
  checkb "tighter bound implies looser" true (implies (ge 18) (ge 10));
  checkb "looser does not imply tighter" false (implies (ge 10) (ge 18));
  checkb "equality implies inequality" true
    (implies (C.Cmp ("Age", C.Eq, V.Int 5)) (C.Cmp ("Age", C.Neq, V.Int 7)));
  checkb "conjunct implies disjunct" true (implies (C.And (ge 10, lt 20)) (C.Or (ge 10, ge 30)));
  checkb "enum case implication" true
    (implies (eqs "Gender" "M") (C.Or (eqs "Gender" "M", eqs "Gender" "F")))

(* Soundness against brute force: for conditions over Age (non-null int) and
   Gender, [tautology] agrees with evaluating over a wide concrete sweep. *)
let prop_taut_sound =
  qtest "tautology agrees with brute-force sweeps" ~count:200
    (QCheck.make
       ~print:C.show
       QCheck.Gen.(
         let atom =
           oneof
             [
               (let* n = int_range 0 10 in
                let* op = oneofl [ C.Eq; C.Neq; C.Lt; C.Le; C.Gt; C.Ge ] in
                return (C.Cmp ("Age", op, V.Int n)));
               (let* g = oneofl [ "M"; "F" ] in
                return (eqs "Gender" g));
             ]
         in
         sized (fun n ->
             fix
               (fun self n ->
                 if n <= 1 then atom
                 else
                   frequency
                     [ (1, atom);
                       (2, map2 (fun a b -> C.And (a, b)) (self (n / 2)) (self (n / 2)));
                       (2, map2 (fun a b -> C.Or (a, b)) (self (n / 2)) (self (n / 2))) ])
               (min n 6))))
    (fun c ->
      let brute =
        List.for_all
          (fun age ->
            List.for_all
              (fun g ->
                let row =
                  Datum.Row.of_list
                    [ ("$type", V.String "Human"); ("Hid", V.Int 1); ("Age", V.Int age);
                      ("Gender", V.String g); ("Note", V.Null) ]
                in
                C.eval schema row c)
              [ "M"; "F" ])
          (List.init 31 (fun i -> i - 10))
      in
      taut c = brute)

let () =
  Alcotest.run "cover"
    [
      ( "tautology",
        [
          Alcotest.test_case "intervals" `Quick test_interval_tautologies;
          Alcotest.test_case "enums" `Quick test_enum_tautologies;
          Alcotest.test_case "nullability" `Quick test_nullability;
          Alcotest.test_case "type atoms" `Quick test_type_atoms;
        ] );
      ( "satisfiable / implies",
        [
          Alcotest.test_case "satisfiable" `Quick test_satisfiable;
          Alcotest.test_case "implies" `Quick test_implies;
        ] );
      ("soundness", [ prop_taut_sound ]);
    ]
