open Common

let store = Workload.Paper_example.stage4.env.Query.Env.store
let sample = Workload.Paper_example.sample_store

let test_table_ops () =
  let tbl = Relational.Schema.get_table store "Client" in
  check Alcotest.(list string) "columns" [ "Cid"; "Eid"; "Name"; "Score"; "Addr" ]
    (Relational.Table.column_names tbl);
  checkb "key not nullable" false (Relational.Table.nullable tbl "Cid");
  checkb "Eid nullable" true (Relational.Table.nullable tbl "Eid");
  checkb "unknown column not nullable" false (Relational.Table.nullable tbl "Zz");
  check Alcotest.(list string) "non-key columns" [ "Eid"; "Name"; "Score"; "Addr" ]
    (Relational.Table.non_key_columns tbl);
  checkb "domain_of" true (Relational.Table.domain_of tbl "Score" = Some D.Int)

let test_schema_ops () =
  check_ok "paper store well-formed" (Relational.Schema.well_formed store);
  check Alcotest.int "referencing Emp" 1 (List.length (Relational.Schema.referencing store "Emp"));
  check_error "remove referenced table"
    (Result.map (fun _ -> ()) (Relational.Schema.remove_table "HR" store));
  let ok_removed = Relational.Schema.remove_table "Client" store in
  checkb "remove unreferenced table" true (Result.is_ok ok_removed)

let test_schema_well_formed_negative () =
  let bad_fk =
    Relational.Table.make ~name:"T" ~key:[ "Id" ]
      ~fks:[ { Relational.Table.fk_columns = [ "Id" ]; ref_table = "Missing"; ref_columns = [ "Id" ] } ]
      [ ("Id", D.Int, `Not_null) ]
  in
  let s = ok_exn (Relational.Schema.add_table bad_fk Relational.Schema.empty) in
  check_error "fk to unknown table" (Relational.Schema.well_formed s);
  let partial_key_fk =
    Relational.Table.make ~name:"U" ~key:[ "Id" ]
      ~fks:[ { Relational.Table.fk_columns = [ "Id" ]; ref_table = "Client"; ref_columns = [ "Eid" ] } ]
      [ ("Id", D.Int, `Not_null) ]
  in
  let s2 = ok_exn (Relational.Schema.add_table partial_key_fk store) in
  check_error "fk not targeting full key" (Relational.Schema.well_formed s2);
  let mismatched =
    Relational.Table.make ~name:"W" ~key:[ "Id" ]
      ~fks:[ { Relational.Table.fk_columns = [ "Id" ]; ref_table = "HR"; ref_columns = [ "Id" ] } ]
      [ ("Id", D.String, `Not_null) ]
  in
  let s3 = ok_exn (Relational.Schema.add_table mismatched store) in
  check_error "fk domain mismatch" (Relational.Schema.well_formed s3)

let test_instance_conforms () =
  check_ok "sample conforms" (Relational.Instance.conforms store sample);
  let missing_col =
    Relational.Instance.add_row ~table:"HR" (row [ ("Id", V.Int 9) ]) Relational.Instance.empty
  in
  check_error "row missing column" (Relational.Instance.conforms store missing_col);
  let null_in_required =
    Relational.Instance.add_row ~table:"HR"
      (row [ ("Id", V.Null); ("Name", V.String "x") ])
      Relational.Instance.empty
  in
  check_error "null in non-nullable" (Relational.Instance.conforms store null_in_required);
  let dup =
    Relational.Instance.empty
    |> Relational.Instance.add_row ~table:"HR" (row [ ("Id", V.Int 1); ("Name", V.String "a") ])
    |> Relational.Instance.add_row ~table:"HR" (row [ ("Id", V.Int 1); ("Name", V.String "b") ])
  in
  check_error "duplicate key" (Relational.Instance.conforms store dup)

let test_instance_fks () =
  let dangling =
    Relational.Instance.add_row ~table:"Emp"
      (row [ ("Id", V.Int 77); ("Dept", V.String "x") ])
      sample
  in
  check_error "dangling Emp.Id -> HR.Id" (Relational.Instance.conforms store dangling);
  (* NULL foreign keys are exempt (simple match): Client.Eid of Fay is NULL. *)
  check_ok "null fk exempt" (Relational.Instance.conforms store sample);
  let bad_eid =
    Relational.Instance.add_row ~table:"Client"
      (row
         [ ("Cid", V.Int 9); ("Eid", V.Int 99); ("Name", V.String "x"); ("Score", V.Int 1);
           ("Addr", V.String "a") ])
      sample
  in
  check_error "dangling Client.Eid" (Relational.Instance.conforms store bad_eid)

let test_instance_equal () =
  let a =
    Relational.Instance.set_rows ~table:"HR"
      [ row [ ("Id", V.Int 1); ("Name", V.String "a") ]; row [ ("Id", V.Int 2); ("Name", V.String "b") ] ]
      Relational.Instance.empty
  in
  let b =
    Relational.Instance.set_rows ~table:"HR"
      [
        row [ ("Id", V.Int 2); ("Name", V.String "b") ];
        row [ ("Id", V.Int 1); ("Name", V.String "a") ];
        row [ ("Id", V.Int 1); ("Name", V.String "a") ];
      ]
      Relational.Instance.empty
  in
  checkb "order- and duplicate-insensitive" true (Relational.Instance.equal a b);
  checkb "empty table equals missing table" true
    (Relational.Instance.equal Relational.Instance.empty
       (Relational.Instance.set_rows ~table:"HR" [] Relational.Instance.empty))

let () =
  Alcotest.run "relational"
    [
      ( "schema",
        [
          Alcotest.test_case "table ops" `Quick test_table_ops;
          Alcotest.test_case "schema ops" `Quick test_schema_ops;
          Alcotest.test_case "well-formed negatives" `Quick test_schema_well_formed_negative;
        ] );
      ( "instance",
        [
          Alcotest.test_case "conforms" `Quick test_instance_conforms;
          Alcotest.test_case "foreign keys" `Quick test_instance_fks;
          Alcotest.test_case "equality" `Quick test_instance_equal;
        ] );
    ]
