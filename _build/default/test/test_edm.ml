open Common

let client = Workload.Paper_example.stage4.env.Query.Env.client
let slist = Alcotest.(list string)

let test_hierarchy () =
  check slist "ancestors of Employee" [ "Person" ] (Edm.Schema.ancestors client "Employee");
  check slist "ancestors of Person" [] (Edm.Schema.ancestors client "Person");
  check slist "children of Person" [ "Customer"; "Employee" ] (Edm.Schema.children client "Person");
  check slist "subtypes of Person" [ "Person"; "Customer"; "Employee" ]
    (Edm.Schema.subtypes client "Person");
  checkb "Employee <= Person" true (Edm.Schema.is_subtype client ~sub:"Employee" ~sup:"Person");
  checkb "Person not <= Employee" false (Edm.Schema.is_subtype client ~sub:"Person" ~sup:"Employee");
  checkb "reflexive" true (Edm.Schema.is_subtype client ~sub:"Person" ~sup:"Person");
  check Alcotest.string "root_of" "Person" (Edm.Schema.root_of client "Customer")

let test_strictly_between () =
  (* Deeper chain: A <- B <- C <- D *)
  let s =
    ok_exn
      (Edm.Schema.add_root ~set:"As"
         (Edm.Entity_type.root ~name:"A" ~key:[ "Id" ] [ ("Id", D.Int) ])
         Edm.Schema.empty)
  in
  let s = ok_exn (Edm.Schema.add_derived (Edm.Entity_type.derived ~name:"B" ~parent:"A" []) s) in
  let s = ok_exn (Edm.Schema.add_derived (Edm.Entity_type.derived ~name:"C" ~parent:"B" []) s) in
  let s = ok_exn (Edm.Schema.add_derived (Edm.Entity_type.derived ~name:"D" ~parent:"C" []) s) in
  check slist "between D and A" [ "C"; "B" ] (Edm.Schema.strictly_between s ~low:"D" ~high:(Some "A"));
  check slist "between D and NIL" [ "C"; "B"; "A" ] (Edm.Schema.strictly_between s ~low:"D" ~high:None);
  check slist "between B and A" [] (Edm.Schema.strictly_between s ~low:"B" ~high:(Some "A"))

let test_attributes () =
  check slist "att(Employee)" [ "Id"; "Name"; "Department" ]
    (Edm.Schema.attribute_names client "Employee");
  check slist "att(Customer)" [ "Id"; "Name"; "CredScore"; "BillAddr" ]
    (Edm.Schema.attribute_names client "Customer");
  check slist "key of derived type" [ "Id" ] (Edm.Schema.key_of client "Customer");
  checkb "attribute domain" true
    (Edm.Schema.attribute_domain client "Customer" "CredScore" = Some D.Int)

let test_sets_and_assocs () =
  checkb "set_of_type derived" true (Edm.Schema.set_of_type client "Employee" = Some "Persons");
  checkb "set_root" true (Edm.Schema.set_root client "Persons" = Some "Person");
  check slist "assoc columns" [ "Customer.Id"; "Employee.Id" ]
    (Edm.Schema.association_columns client
       (Option.get (Edm.Schema.find_association client "Supports")));
  check Alcotest.int "associations_on Customer" 1
    (List.length (Edm.Schema.associations_on client "Customer"));
  check Alcotest.int "associations_on Person" 0
    (List.length (Edm.Schema.associations_on client "Person"))

let test_construction_errors () =
  let dup = Edm.Entity_type.root ~name:"Person" ~key:[ "Id" ] [ ("Id", D.Int) ] in
  check_error "duplicate type" (Result.map (fun _ -> ()) (Edm.Schema.add_root ~set:"X" dup client));
  let orphan = Edm.Entity_type.derived ~name:"Z" ~parent:"Nope" [] in
  check_error "unknown parent" (Result.map (fun _ -> ()) (Edm.Schema.add_derived orphan client));
  let shadow = Edm.Entity_type.derived ~name:"Shadow" ~parent:"Person" [ ("Name", D.String) ] in
  check_error "attribute shadowing" (Result.map (fun _ -> ()) (Edm.Schema.add_derived shadow client));
  check_error "remove non-leaf" (Result.map (fun _ -> ()) (Edm.Schema.remove_type "Person" client));
  check_error "remove assoc endpoint"
    (Result.map (fun _ -> ()) (Edm.Schema.remove_type "Customer" client));
  check_error "self association"
    (Result.map
       (fun _ -> ())
       (Edm.Schema.add_association
          { Edm.Association.name = "Self"; end1 = "Person"; end2 = "Person";
            mult1 = Edm.Association.Many; mult2 = Edm.Association.Many }
          client))

let test_evolution () =
  let s = ok_exn (Edm.Schema.add_attribute ~etype:"Employee" ("Level", D.Int) client) in
  check slist "attribute appended" [ "Id"; "Name"; "Department"; "Level" ]
    (Edm.Schema.attribute_names s "Employee");
  check_error "attribute clash via descendant"
    (Result.map (fun _ -> ()) (Edm.Schema.add_attribute ~etype:"Person" ("Department", D.Int) client));
  (* remove_subtree refuses when an association endpoint is inside. *)
  check_error "remove_subtree with endpoint"
    (Result.map (fun _ -> ()) (Edm.Schema.remove_subtree "Person" client));
  let s2 = ok_exn (Edm.Schema.remove_association "Supports" client) in
  let s3 = ok_exn (Edm.Schema.remove_subtree "Person" s2) in
  checkb "all types gone" true (Edm.Schema.types s3 = []);
  checkb "set gone" true (Edm.Schema.entity_sets s3 = [])

let test_reparent () =
  (* Refactor scenario: two roots, fold one under the other. *)
  let s =
    ok_exn
      (Edm.Schema.add_root ~set:"As"
         (Edm.Entity_type.root ~name:"A" ~key:[ "Id" ] [ ("Id", D.Int) ])
         Edm.Schema.empty)
  in
  let s =
    ok_exn
      (Edm.Schema.add_root ~set:"Bs"
         (Edm.Entity_type.root ~name:"B" ~key:[ "Bid" ] [ ("Bid", D.Int); ("X", D.String) ])
         s)
  in
  let s' = ok_exn (Edm.Schema.reparent ~etype:"B" ~parent:"A" s) in
  checkb "B now derived" true (Edm.Schema.parent s' "B" = Some "A");
  check slist "B attrs include inherited Id" [ "Id"; "Bid"; "X" ] (Edm.Schema.attribute_names s' "B");
  check slist "B keys on A's key" [ "Id" ] (Edm.Schema.key_of s' "B");
  checkb "Bs set dropped" true (Edm.Schema.set_root s' "Bs" = None);
  check_ok "still well-formed" (Edm.Schema.well_formed s');
  check_error "cycle rejected" (Result.map (fun _ -> ()) (Edm.Schema.reparent ~etype:"A" ~parent:"B" s'))

let test_well_formed () =
  check_ok "paper schema well-formed" (Edm.Schema.well_formed client)

let sample = Workload.Paper_example.sample_client

let test_instance_conforms () =
  check_ok "sample conforms" (Edm.Instance.conforms client sample);
  let bad_attrs =
    Edm.Instance.add_entity ~set:"Persons"
      (Edm.Instance.entity ~etype:"Person" [ ("Id", V.Int 99) ])
      Edm.Instance.empty
  in
  check_error "missing attribute" (Edm.Instance.conforms client bad_attrs);
  let bad_domain =
    Edm.Instance.add_entity ~set:"Persons"
      (Edm.Instance.entity ~etype:"Person" [ ("Id", V.Int 1); ("Name", V.Int 5) ])
      Edm.Instance.empty
  in
  check_error "domain violation" (Edm.Instance.conforms client bad_domain);
  let dup_key =
    Edm.Instance.empty
    |> Edm.Instance.add_entity ~set:"Persons"
         (Edm.Instance.entity ~etype:"Person" [ ("Id", V.Int 1); ("Name", V.String "a") ])
    |> Edm.Instance.add_entity ~set:"Persons"
         (Edm.Instance.entity ~etype:"Employee"
            [ ("Id", V.Int 1); ("Name", V.String "b"); ("Department", V.String "d") ])
  in
  check_error "duplicate key across types" (Edm.Instance.conforms client dup_key);
  let null_key =
    Edm.Instance.add_entity ~set:"Persons"
      (Edm.Instance.entity ~etype:"Person" [ ("Id", V.Null); ("Name", V.String "a") ])
      Edm.Instance.empty
  in
  check_error "null key" (Edm.Instance.conforms client null_key)

let test_instance_links () =
  let dangling =
    Edm.Instance.add_link ~assoc:"Supports"
      (row [ ("Customer.Id", V.Int 5); ("Employee.Id", V.Int 42) ])
      sample
  in
  check_error "dangling employee end" (Edm.Instance.conforms client dangling);
  (* Multiplicity 0..1 on the employee side: one customer, two employees. *)
  let twice =
    sample
    |> Edm.Instance.add_link ~assoc:"Supports"
         (row [ ("Customer.Id", V.Int 5); ("Employee.Id", V.Int 3) ])
  in
  check_error "customer supported twice" (Edm.Instance.conforms client twice);
  (* The many side is unconstrained: two customers, same employee. *)
  let shared =
    sample
    |> Edm.Instance.add_link ~assoc:"Supports"
         (row [ ("Customer.Id", V.Int 6); ("Employee.Id", V.Int 4) ])
  in
  check_ok "many side unconstrained" (Edm.Instance.conforms client shared)

let test_restrict_new_components () =
  let old = Workload.Paper_example.stage2.env.Query.Env.client in
  let restricted = Edm.Instance.restrict_new_components ~old_schema:old sample in
  checkb "customers dropped" true
    (List.for_all
       (fun (e : Edm.Instance.entity) -> e.etype <> "Customer")
       (Edm.Instance.entities restricted ~set:"Persons"));
  checkb "links dropped" true (Edm.Instance.links restricted ~assoc:"Supports" = []);
  check Alcotest.int "persons and employees kept" 4
    (List.length (Edm.Instance.entities restricted ~set:"Persons"))

let prop_conforming_generated =
  qtest "generator produces conforming instances" ~count:200 arb_client_instance (fun inst ->
      match Edm.Instance.conforms client inst with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "non-conforming: %s" e)

let () =
  Alcotest.run "edm"
    [
      ( "schema",
        [
          Alcotest.test_case "hierarchy" `Quick test_hierarchy;
          Alcotest.test_case "strictly_between" `Quick test_strictly_between;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "sets and associations" `Quick test_sets_and_assocs;
          Alcotest.test_case "construction errors" `Quick test_construction_errors;
          Alcotest.test_case "evolution" `Quick test_evolution;
          Alcotest.test_case "reparent" `Quick test_reparent;
          Alcotest.test_case "well-formed" `Quick test_well_formed;
        ] );
      ( "instance",
        [
          Alcotest.test_case "conforms" `Quick test_instance_conforms;
          Alcotest.test_case "links" `Quick test_instance_links;
          Alcotest.test_case "restrict to old schema" `Quick test_restrict_new_components;
          prop_conforming_generated;
        ] );
    ]
