(* imcc — the incremental mapping compiler, on the command line.

   The tool operates on built-in evaluation models (-m) or on model files in
   the surface syntax (-f, see lib/surface/parser.mli and examples/models):

     imcc models                        list the built-in models
     imcc show    (-m MODEL | -f FILE)  print schemas / fragments / views
     imcc compile (-m MODEL | -f FILE) [-o state.imcs]
                                        full compilation; optionally persist
                                        the compiled state
     imcc evolve  (-m MODEL [-s SMO] | -f FILE --script CHANGES.smo [-o OUT])
                                        apply SMOs incrementally, timed
     imcc roundtrip (-m MODEL | -f FILE) [-n N]
                                        empirical roundtrip check

   A -f FILE may be a model file (client/store/mapping sections) or a
   compiled state saved by `imcc compile -o` / `imcc evolve -o`; compiled
   states resume without re-running the full compiler — the workflow of the
   paper's Fig. 7. *)

open Cmdliner

let ok = function Ok x -> x | Error e -> Printf.eprintf "error: %s\n" e; exit 1

(* -- model registry -------------------------------------------------------- *)

type model = {
  mname : string;
  describe : string;
  load : size:int -> Query.Env.t * Mapping.Fragments.t;
  suite : (size:int -> (string * Core.Smo.t) list) option;
}

let models =
  [
    { mname = "paper"; describe = "the running example of Figs. 1/5 (stage 4)";
      load = (fun ~size:_ ->
        let s = Workload.Paper_example.stage4 in
        (s.Workload.Paper_example.env, s.Workload.Paper_example.fragments));
      suite = None };
    { mname = "chain"; describe = "the chain model of Fig. 8 (scaled by --size, default 100)";
      load = (fun ~size -> Workload.Chain.generate ~size);
      suite = Some (fun ~size -> Workload.Chain.smo_suite ~at:(max 1 (size / 2))) };
    { mname = "hub-rim"; describe = "the hub-and-rim model of Fig. 3 (N=2, M=3, TPH)";
      load = (fun ~size:_ -> Workload.Hub_rim.generate ~n:2 ~m:3 ~style:`Tph);
      suite = None };
    { mname = "hub-rim-tpt"; describe = "hub-and-rim mapped table-per-type";
      load = (fun ~size:_ -> Workload.Hub_rim.generate ~n:2 ~m:3 ~style:`Tpt);
      suite = None };
    { mname = "customer"; describe = Workload.Customer.stats ();
      load = (fun ~size:_ -> Workload.Customer.generate ());
      suite = Some (fun ~size:_ -> Workload.Customer.smo_suite ()) };
  ]

let find_model name =
  match List.find_opt (fun m -> m.mname = name) models with
  | Some m -> m
  | None ->
      Printf.eprintf "unknown model %s (try `imcc models`)\n" name;
      exit 1

let model_arg =
  let doc = "Built-in model to operate on (see `imcc models`)." in
  Arg.(value & opt (some string) None & info [ "m"; "model" ] ~docv:"MODEL" ~doc)

let file_arg =
  let doc = "Model file (.imc) or compiled state (.imcs) to operate on." in
  Arg.(value & opt (some string) None & info [ "f"; "file" ] ~docv:"FILE" ~doc)

let out_arg =
  let doc = "Write the compiled state to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> s
  | exception Sys_error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1

let write_file path s = Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc s)

let looks_like_state text =
  let rec first i =
    if i >= String.length text then false
    else match text.[i] with ' ' | '\n' | '\t' | '\r' -> first (i + 1) | c -> c = '('
  in
  first 0

(* Load either a built-in model or a file; returns the environment and
   fragments, plus the compiled state when the file already carries views. *)
let load_input ~model ~file ~size =
  match model, file with
  | Some name, None ->
      let m = find_model name in
      let env, frags = m.load ~size in
      (env, frags, None)
  | None, Some path ->
      let text = read_file path in
      if looks_like_state text then begin
        let st = ok (Surface.State_io.load text) in
        (st.Core.State.env, st.Core.State.fragments, Some st)
      end
      else begin
        let ast = ok (Surface.Parser.model text) in
        let env, frags = ok (Surface.Elaborate.model ast) in
        (env, frags, None)
      end
  | Some _, Some _ ->
      Printf.eprintf "error: pass either -m or -f, not both\n";
      exit 1
  | None, None ->
      Printf.eprintf "error: pass -m MODEL or -f FILE\n";
      exit 1

let state_of ?jobs ~env ~frags = function
  | Some st -> st
  | None -> Core.State.of_compiled env frags (ok (Fullc.Compile.compile ?jobs env frags))

let size_arg =
  let doc = "Size parameter for scalable models (the chain's type count)." in
  Arg.(value & opt int 100 & info [ "size" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Discharge containment obligations on $(docv) domains.  Verdicts and failure \
     messages are identical for every value; only wall-clock changes.  Defaults to \
     the IMC_JOBS environment variable, or 1."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* -- observability ---------------------------------------------------------- *)

let trace_arg =
  let doc =
    "Record a hierarchical compilation trace and write it to $(docv) as Chrome \
     trace_event JSON (loadable in about:tracing or Perfetto)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE.json" ~doc)

let profile_arg =
  let doc = "Print the span tree and a per-phase aggregate when the command finishes." in
  Arg.(value & flag & info [ "profile" ] ~doc)

(* Run [f] with span collection on when --trace/--profile ask for it; export
   on the way out (also on exit 1 paths, which call [exit] inside [f]). *)
let with_obs ~trace ~profile f =
  if trace = None && not profile then f ()
  else begin
    Obs.Span.reset ();
    Obs.enable ();
    let finish () =
      Obs.disable ();
      (match trace with
      | None -> ()
      | Some path -> (
          match write_file path (Obs.Export.trace_json ~process:"imcc" ()) with
          | () -> Printf.printf "trace written to %s\n" path
          | exception Sys_error msg ->
              Printf.eprintf "warning: could not write trace: %s\n" msg));
      if profile then begin
        Format.printf "@.== span tree ==@.%a" Obs.Export.pp_tree ();
        Format.printf "@.== per-phase aggregate ==@.%a" Obs.Export.pp_aggregate ()
      end
    in
    at_exit finish;
    f ()
  end

(* -- commands --------------------------------------------------------------- *)

let models_cmd =
  let run () =
    List.iter (fun m -> Printf.printf "%-12s %s\n" m.mname m.describe) models
  in
  Cmd.v (Cmd.info "models" ~doc:"List the built-in models") Term.(const run $ const ())

let show_cmd =
  let schemas =
    Arg.(value & flag & info [ "schemas" ] ~doc:"Print the client and store schemas.")
  in
  let fragments = Arg.(value & flag & info [ "fragments" ] ~doc:"Print the mapping fragments.") in
  let views =
    Arg.(value & flag & info [ "views" ] ~doc:"Compile and print the query and update views.")
  in
  let run name file size schemas fragments views =
    let env, frags, _ = load_input ~model:name ~file ~size in
    let all = not (schemas || fragments || views) in
    if schemas || all then
      Format.printf "== client schema ==@.%a@.@.== store schema ==@.%a@.@." Edm.Schema.pp
        env.Query.Env.client Relational.Schema.pp env.Query.Env.store;
    if fragments || all then Format.printf "== mapping fragments ==@.%a@.@." Mapping.Fragments.pp frags;
    if views then begin
      let c = ok (Fullc.Compile.compile env frags) in
      Format.printf "== query views ==@.%a@.@.== update views ==@.%a@." Query.Pretty.query_views
        c.Fullc.Compile.query_views Query.Pretty.update_views c.Fullc.Compile.update_views
    end
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Print a model's schemas, fragments, or compiled views")
    Term.(const run $ model_arg $ file_arg $ size_arg $ schemas $ fragments $ views)

let compile_cmd =
  let no_validate =
    Arg.(value & flag & info [ "no-validate" ] ~doc:"Skip validation (view generation only).")
  in
  let run name file size no_validate jobs output trace profile =
    with_obs ~trace ~profile @@ fun () ->
    let env, frags, _ = load_input ~model:name ~file ~size in
    let what = match name, file with Some n, _ -> n | _, Some f -> f | _ -> "?" in
    Containment.Stats.reset ();
    let t0 = Unix.gettimeofday () in
    let c = ok (Fullc.Compile.compile ~validate:(not no_validate) ?jobs env frags) in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "full compilation of %s: %.3fs\n" what dt;
    Printf.printf "  fragments:          %d\n" (Mapping.Fragments.size frags);
    Printf.printf "  entity views:       %d\n"
      (List.length (Query.View.entity_view_bindings c.Fullc.Compile.query_views));
    Printf.printf "  update views:       %d\n"
      (List.length (Query.View.update_view_bindings c.Fullc.Compile.update_views));
    Printf.printf "  cells enumerated:   %d\n" c.Fullc.Compile.report.Fullc.Validate.cells_visited;
    Printf.printf "  fk checks:          %d\n"
      c.Fullc.Compile.report.Fullc.Validate.containment_checks;
    Format.printf "  containment stats:  %a@." Containment.Stats.pp (Containment.Stats.read ());
    match output with
    | None -> ()
    | Some path ->
        write_file path (Surface.State_io.save (Core.State.of_compiled env frags c));
        Printf.printf "compiled state written to %s\n" path
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Run the full (baseline) mapping compiler on a model")
    Term.(const run $ model_arg $ file_arg $ size_arg $ no_validate $ jobs_arg $ out_arg
          $ trace_arg $ profile_arg)

let evolve_cmd =
  let smo_name =
    Arg.(value & opt (some string) None
         & info [ "s"; "smo" ] ~docv:"SMO" ~doc:"Apply only the named SMO (e.g. AE-TPT).")
  in
  let script_arg =
    Arg.(value & opt (some string) None
         & info [ "script" ] ~docv:"FILE.smo" ~doc:"Apply the SMO script from this file.")
  in
  let run name file size smo_name script jobs output trace profile =
    with_obs ~trace ~profile @@ fun () ->
    let env, frags, loaded = load_input ~model:name ~file ~size in
    let t0 = Unix.gettimeofday () in
    let st = state_of ?jobs ~env ~frags loaded in
    (match loaded with
    | Some _ -> Printf.printf "resumed compiled state\n\n"
    | None -> Printf.printf "bootstrap (full compilation): %.3fs\n\n" (Unix.gettimeofday () -. t0));
    match script with
    | Some path ->
        let ast = ok (Surface.Parser.script (read_file path)) in
        let smos = ok (Surface.Elaborate.script ast) in
        let st =
          List.fold_left
            (fun st smo ->
              match Core.Engine.apply_timed ?jobs st smo with
              | Ok (st', t) ->
                  Format.printf "%-10s %.2f ms   %a@." (Core.Smo.name smo)
                    (t.Core.Engine.seconds *. 1000.)
                    Containment.Stats.pp t.Core.Engine.containment;
                  st'
              | Error e ->
                  Printf.eprintf "error: %s aborts: %s\n" (Core.Smo.show smo)
                    (Containment.Validation_error.show e);
                  exit 1)
            st smos
        in
        (match output with
        | None -> ()
        | Some path ->
            write_file path (Surface.State_io.save st);
            Printf.printf "evolved state written to %s\n" path)
    | None ->
        let suite =
          match name with
          | Some n -> (
              match (find_model n).suite with
              | Some s -> s ~size
              | None ->
                  Printf.eprintf "model %s has no SMO suite (try chain or customer)\n" n;
                  exit 1)
          | None ->
              Printf.eprintf "with -f, pass --script FILE.smo\n";
              exit 1
        in
        let selected =
          match smo_name with
          | None -> suite
          | Some s -> List.filter (fun (l, _) -> l = s) suite
        in
        if selected = [] then begin
          Printf.eprintf "unknown SMO; available: %s\n" (String.concat ", " (List.map fst suite));
          exit 1
        end;
        List.iter
          (fun (label, smo) ->
            match Core.Engine.apply_timed ?jobs st smo with
            | Ok (_, t) ->
                Format.printf "%-10s %.2f ms   %a@." label (t.Core.Engine.seconds *. 1000.)
                  Containment.Stats.pp t.Core.Engine.containment
            | Error e ->
                Printf.printf "%-10s aborts: %s\n" label
                  (Containment.Validation_error.show e))
          selected
  in
  Cmd.v
    (Cmd.info "evolve" ~doc:"Apply SMOs (a built-in suite or a script file) incrementally")
    Term.(const run $ model_arg $ file_arg $ size_arg $ smo_name $ script_arg $ jobs_arg
          $ out_arg $ trace_arg $ profile_arg)

let roundtrip_cmd =
  let samples =
    Arg.(value & opt int 50 & info [ "n"; "samples" ] ~docv:"N" ~doc:"Number of random states.")
  in
  let run name file size samples =
    let env, frags, loaded = load_input ~model:name ~file ~size in
    let st = state_of ~env ~frags loaded in
    match
      Roundtrip.Check.roundtrips st.Core.State.env st.Core.State.query_views
        st.Core.State.update_views ~samples ()
    with
    | Ok n -> Printf.printf "%d random client states roundtripped losslessly\n" n
    | Error f ->
        Format.printf "roundtrip FAILED:@.%a@." Roundtrip.Check.pp_failure f;
        exit 1
  in
  Cmd.v
    (Cmd.info "roundtrip" ~doc:"Empirically check that the compiled mapping roundtrips")
    Term.(const run $ model_arg $ file_arg $ size_arg $ samples)

let data_arg =
  let doc = "Client-state literal file (a `data { ... }` block)." in
  Arg.(value & opt (some string) None & info [ "data" ] ~docv:"FILE" ~doc)

let query_cmd =
  let qtext =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"QUERY" ~doc:"e.g. \"select Id, Name from Persons where is of Employee\"")
  in
  let plan_flag =
    Arg.(value & flag
         & info [ "plan" ] ~doc:"Print the physical plan the execution engine would run.")
  in
  let exec_flag =
    Arg.(value & flag
         & info [ "exec" ]
             ~doc:"Execute the physical plan against the store instance derived from --data and \
                   cross-check it against the naive evaluator.")
  in
  let run name file size data qtext plan exec jobs =
    let env, frags, loaded = load_input ~model:name ~file ~size in
    let st = state_of ~env ~frags loaded in
    let env = st.Core.State.env in
    let q_ast = ok (Surface.Parser.query qtext) in
    let q = ok (Surface.Elaborate.query env q_ast) in
    let unfolded = ok (Query.Unfold.client_query env st.Core.State.query_views q) in
    Format.printf "-- client query@.%a@.@.-- unfolds over the store to@.%a@." Query.Pretty.query q
      Query.Pretty.query unfolded;
    let phys =
      if plan || exec then Some (ok (Exec.Planner.plan env unfolded)) else None
    in
    (match phys with
    | Some p when plan -> Format.printf "@.-- physical plan@.%s" (Exec.Plan.show p)
    | Some _ | None -> ());
    match data with
    | None ->
        if exec then begin
          Printf.eprintf "error: --exec needs a store instance; pass --data FILE\n";
          exit 1
        end
    | Some path ->
        let inst = ok (Surface.Elaborate.data env (ok (Surface.Parser.data (read_file path)))) in
        let store = ok (Query.View.apply_update_views env st.Core.State.update_views inst) in
        let client_rows = Query.Eval.rows_set env (Query.Eval.client_db inst) q in
        let store_rows = Query.Eval.rows_set env (Query.Eval.store_db store) unfolded in
        Format.printf "@.-- rows (over %s)@." path;
        List.iter (fun r -> Format.printf "%a@." Datum.Row.pp r) client_rows;
        Format.printf "@.client-side and store-side evaluation agree: %b@."
          (List.equal Datum.Row.equal client_rows store_rows);
        match phys with
        | Some p when exec ->
            let jobs =
              match jobs with Some j -> j | None -> Containment.Discharge.default_jobs ()
            in
            let db = Query.Eval.store_db store in
            let idb = Exec.Idb.make env db in
            let before = Obs.Metric.snapshot () in
            let t0 = Unix.gettimeofday () in
            let exec_rows = Exec.Run.rows ~jobs idb p in
            let dt = Unix.gettimeofday () -. t0 in
            let delta = Obs.Metric.diff before (Obs.Metric.snapshot ()) in
            let naive = List.sort Datum.Row.compare (Query.Eval.rows env db unfolded) in
            let agree =
              List.equal Datum.Row.equal naive (List.sort Datum.Row.compare exec_rows)
            in
            Format.printf "@.-- physical execution (jobs=%d)@." jobs;
            Format.printf "%d rows in %.3f ms; agrees with naive evaluation: %b@."
              (List.length exec_rows) (dt *. 1000.) agree;
            List.iter
              (fun (name, v) ->
                if v <> 0 && String.length name >= 5 && String.sub name 0 5 = "exec." then
                  Format.printf "  %-24s %d@." name v)
              delta.Obs.Metric.counters
        | Some _ | None -> ()
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Translate (and optionally evaluate) a client query by view unfolding")
    Term.(const run $ model_arg $ file_arg $ size_arg $ data_arg $ qtext $ plan_flag $ exec_flag
          $ jobs_arg)

let dml_cmd =
  let script_arg =
    Arg.(required & opt (some string) None
         & info [ "script" ] ~docv:"FILE.dml" ~doc:"Client-side update script.")
  in
  let run name file size data script =
    let env, frags, loaded = load_input ~model:name ~file ~size in
    let st = state_of ~env ~frags loaded in
    let env = st.Core.State.env in
    let inst =
      match data with
      | Some path -> ok (Surface.Elaborate.data env (ok (Surface.Parser.data (read_file path))))
      | None -> Edm.Instance.empty
    in
    let delta = ok (Surface.Elaborate.dml (ok (Surface.Parser.dml (read_file script)))) in
    let sql_script, _new_client, new_store =
      ok (Dml.Translate.translate env st.Core.State.update_views ~old_client:inst ~delta)
    in
    Format.printf "-- translated DML@.%s@." (Dml.Translate.to_sql sql_script);
    Format.printf "-- resulting store state@.%a@." Relational.Instance.pp new_store
  in
  Cmd.v
    (Cmd.info "dml"
       ~doc:"Translate a client-side update script into store DML through the update views")
    Term.(const run $ model_arg $ file_arg $ size_arg $ data_arg $ script_arg)

let apply_cmd =
  let script_arg =
    Arg.(required & opt (some string) None
         & info [ "script" ] ~docv:"FILE.dml" ~doc:"Client-side update script.")
  in
  let ivm_flag =
    Arg.(value & flag
         & info [ "ivm" ]
             ~doc:"Translate through the incremental view-maintenance runtime (lib/ivm): \
                   propagate only the delta through the compiled update views instead of \
                   diffing whole store images.  Prints the per-operator rows-propagated \
                   counters.")
  in
  let verify_flag =
    Arg.(value & flag
         & info [ "verify" ]
             ~doc:"Also run the other translation mode and check that both produce \
                   byte-identical SQL and equal store states.")
  in
  let run name file size data script ivm verify trace profile =
    with_obs ~trace ~profile @@ fun () ->
    let env, frags, loaded = load_input ~model:name ~file ~size in
    let st = state_of ~env ~frags loaded in
    let env = st.Core.State.env in
    let uv = st.Core.State.update_views in
    let inst =
      match data with
      | Some path -> ok (Surface.Elaborate.data env (ok (Surface.Parser.data (read_file path))))
      | None -> Edm.Instance.empty
    in
    let delta = ok (Surface.Elaborate.dml (ok (Surface.Parser.dml (read_file script)))) in
    let mode = if ivm then `Ivm else `Full_diff in
    let before = Obs.Metric.snapshot () in
    let sql_script, _new_client, new_store =
      ok (Dml.Translate.translate ~mode env uv ~old_client:inst ~delta)
    in
    Printf.printf "-- mode: %s\n" (if ivm then "ivm" else "full-diff");
    Format.printf "-- translated DML@.%s@." (Dml.Translate.to_sql sql_script);
    if ivm then begin
      let d = Obs.Metric.diff before (Obs.Metric.snapshot ()) in
      let ivm_counters =
        List.filter (fun (n, v) -> v <> 0 && String.length n >= 4 && String.sub n 0 4 = "ivm.")
          d.Obs.Metric.counters
      in
      if ivm_counters <> [] then begin
        Printf.printf "-- rows propagated per operator\n";
        List.iter (fun (n, v) -> Printf.printf "   %-20s %d\n" n v) ivm_counters
      end
    end;
    let old_store = ok (Query.View.apply_update_views env uv inst) in
    let applied = ok (Dml.Translate.apply_script old_store sql_script) in
    if not (Relational.Instance.equal applied new_store) then begin
      Printf.eprintf "error: script does not reproduce the new store\n";
      exit 1
    end;
    Format.printf "-- resulting store state@.%a@." Relational.Instance.pp new_store;
    if verify then begin
      let other = if ivm then `Full_diff else `Ivm in
      let sql2, _, store2 = ok (Dml.Translate.translate ~mode:other env uv ~old_client:inst ~delta) in
      if Dml.Translate.to_sql sql2 = Dml.Translate.to_sql sql_script
         && Relational.Instance.equal store2 new_store
      then Printf.printf "verify: both translation modes agree\n"
      else begin
        Printf.eprintf "verify FAILED: modes disagree\n";
        Printf.eprintf "-- %s\n%s" (if ivm then "full-diff" else "ivm")
          (Dml.Translate.to_sql sql2);
        exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "apply"
       ~doc:"Translate a client update and apply it to the store, optionally through the \
             IVM runtime (--ivm)")
    Term.(const run $ model_arg $ file_arg $ size_arg $ data_arg $ script_arg $ ivm_flag
          $ verify_flag $ trace_arg $ profile_arg)

let validate_cmd =
  let run name file size jobs trace profile =
    with_obs ~trace ~profile @@ fun () ->
    let env, frags, loaded = load_input ~model:name ~file ~size in
    let st = state_of ?jobs ~env ~frags loaded in
    Containment.Stats.reset ();
    let t0 = Unix.gettimeofday () in
    match
      Fullc.Validate.run ?jobs st.Core.State.env st.Core.State.fragments
        st.Core.State.update_views
    with
    | Error e ->
        Printf.printf "mapping INVALID: %s\n" e;
        exit 1
    | Ok report ->
        Printf.printf "mapping valid (%.3fs)\n" (Unix.gettimeofday () -. t0);
        Printf.printf "  cells enumerated:  %d\n" report.Fullc.Validate.cells_visited;
        Printf.printf "  covered types:     %d\n" report.Fullc.Validate.covered_types;
        Printf.printf "  fk checks:         %d\n" report.Fullc.Validate.containment_checks;
        Format.printf "  containment stats: %a@." Containment.Stats.pp (Containment.Stats.read ())
  in
  Cmd.v
    (Cmd.info "validate" ~doc:"Run full mapping validation (roundtripping safety checks)")
    Term.(const run $ model_arg $ file_arg $ size_arg $ jobs_arg $ trace_arg $ profile_arg)

let lint_cmd =
  let format_arg =
    Arg.(value & opt (enum [ ("text", `Text); ("json", `Json) ]) `Text
         & info [ "format" ] ~docv:"FMT"
             ~doc:"Output format: $(b,text) (one finding per line plus a summary) or \
                   $(b,json) (the machine-readable CI artifact).")
  in
  let strict_arg =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit non-zero on warning-severity findings too, not just errors.")
  in
  let run name file size format strict trace profile =
    with_obs ~trace ~profile @@ fun () ->
    let env, frags, loaded = load_input ~model:name ~file ~size in
    let t0 = Unix.gettimeofday () in
    (* The view passes need compiled views; a loaded state already carries
       them, otherwise generate without validation — lint is the cheap path,
       it must not pay the obligation engine.  If generation itself fails,
       lint still reports the mapping-level passes plus an L000 notice. *)
    let views, extra =
      match loaded with
      | Some st -> (Some (st.Core.State.query_views, st.Core.State.update_views), [])
      | None -> (
          match Fullc.Compile.compile ~validate:false env frags with
          | Ok c -> (Some (c.Fullc.Compile.query_views, c.Fullc.Compile.update_views), [])
          | Error e ->
              ( None,
                [ Lint.Diag.makef ~code:"L000" ~severity:Lint.Diag.Warning ~loc:Lint.Diag.Model
                    "view generation failed, view passes skipped: %s" e ] ))
    in
    let ds = Lint.Diag.sort (extra @ Lint.Analyze.run ?views env frags) in
    let dt = Unix.gettimeofday () -. t0 in
    (match format with
    | `Text ->
        print_string (Lint.Diag.to_text ds);
        Printf.printf "lint completed in %.2f ms\n" (dt *. 1000.)
    | `Json -> print_string (Lint.Diag.to_json ds));
    let errs, warns, _ = Lint.Diag.count ds in
    if errs > 0 || (strict && warns > 0) then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Run the static mapping analyzer (cheap syntactic diagnostics, no obligation \
             discharge); the exit code gates CI")
    Term.(const run $ model_arg $ file_arg $ size_arg $ format_arg $ strict_arg $ trace_arg
          $ profile_arg)

let diff_cmd =
  let target_arg =
    Arg.(required & opt (some string) None
         & info [ "target" ] ~docv:"FILE.imc" ~doc:"The edited model (its client section).")
  in
  let run name file size target output =
    let env, frags, loaded = load_input ~model:name ~file ~size in
    let st = state_of ~env ~frags loaded in
    let target_ast = ok (Surface.Parser.model (read_file target)) in
    (* Elaborate the target's client section against a permissive store: the
       differ only needs the client schema. *)
    let target_client =
      match Surface.Elaborate.model target_ast with
      | Ok (env', _) -> env'.Query.Env.client
      | Error _ -> (
          (* The target file may only make sense as a client section (its
             mapping may be the old one); elaborate just the client. *)
          match
            Surface.Elaborate.model
              { target_ast with Surface.Ast.tables = []; fragments = [] }
          with
          | Ok (env', _) -> env'.Query.Env.client
          | Error e ->
              Printf.eprintf "error: %s\n" e;
              exit 1)
    in
    let smos = ok (Modef.Diff.infer st ~target:target_client) in
    let text = Surface.Print_dsl.script smos in
    print_string text;
    match output with
    | None -> ()
    | Some path ->
        write_file path text;
        Printf.printf "// written to %s\n" path
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Infer an SMO script from an edited client model (the MoDEF workflow)")
    Term.(const run $ model_arg $ file_arg $ size_arg $ target_arg $ out_arg)

let () =
  let doc = "incremental compilation of object-to-relational mappings (SIGMOD'13)" in
  let info = Cmd.info "imcc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ models_cmd; show_cmd; compile_cmd; evolve_cmd; roundtrip_cmd; query_cmd; dml_cmd;
            apply_cmd; validate_cmd; lint_cmd; diff_cmd ]))
