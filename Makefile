# Convenience targets; everything is plain dune underneath.

all:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

bench-quick:
	dune exec bench/main.exe -- fig2 fig9 ablation --chain-size 200

examples:
	dune build examples
	dune exec examples/quickstart.exe
	dune exec examples/blog_platform.exe
	dune exec examples/partitioned_person.exe
	dune exec examples/evolution_session.exe
	dune exec examples/update_session.exe

clean:
	dune clean

.PHONY: all test bench bench-quick examples clean
